// Command mipsx-run executes a program on the full MIPS-X system (pipeline
// + on-chip Icache + external cache) and reports the run's statistics.
//
// Inputs are either MIPS-X assembly (.s — already scheduled, run as-is) or
// tinyc source (-tiny — compiled, reorganized and assembled first).
//
// Usage:
//
//	mipsx-run prog.s
//	mipsx-run -tiny prog.t
//	mipsx-run -tiny -profile prog.t       # two-pass profile feedback
//	mipsx-run -stats -check prog.s
//	mipsx-run -lint prog.s                # refuse to run hazardous code
//	mipsx-run -breakdown prog.s           # cycle-attribution table
//	mipsx-run -trace-out t.json prog.s    # Chrome/Perfetto event trace
//	mipsx-run -profile-out p.json prog.s  # pc/block profile for mipsx-lint -cost
//	mipsx-run -spec machine.json prog.s   # run on a named design point
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/spec"
	"repro/internal/tinyc"
	"repro/internal/trace"
)

func main() {
	tiny := flag.Bool("tiny", false, "input is tinyc source (compile + reorganize)")
	profile := flag.Bool("profile", false, "with -tiny: rebuild with branch profile feedback")
	stats := flag.Bool("stats", false, "print run statistics")
	check := flag.Bool("check", false, "enable the software-interlock hazard checker")
	doLint := flag.Bool("lint", false, "statically verify the program before running; refuse on errors")
	fast := flag.Bool("fast", false, "enable the compiled fast tier (bit-identical results; see DESIGN.md §12)")
	maxCycles := flag.Uint64("max-cycles", 100_000_000, "cycle limit")
	pipe := flag.Int("pipe", 0, "print the first N cycles of pipeline occupancy")
	breakdown := flag.Bool("breakdown", false, "print the cycle-attribution table (conservation-checked)")
	breakdownOut := flag.String("breakdown-out", "", "write the attribution report as JSON (mipsx-trace viz renders it)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event/Perfetto JSON trace of the run")
	traceEvents := flag.Int("trace-events", obs.DefaultMaxEvents, "with -trace-out: event-buffer bound (oldest kept, rest dropped)")
	obsStream := flag.String("obs-stream", "", "stream the trace to FILE as the run executes (bounded memory, never drops; same bytes as -trace-out)")
	obsWindow := flag.Int("obs-window", 0, "fold the attribution ledger into N-cycle windows (mipsx-obswin/v1 time-series)")
	obsWindowOut := flag.String("obs-window-out", "", "with -obs-window: stream the window time-series to FILE (mipsx-trace -follow tails it)")
	scenarioList := flag.String("scenario", "", "run a multiprogrammed scenario of comma-separated built-in benchmarks (e.g. bubblesort,sieve)")
	scenarioQuantum := flag.Int("scenario-quantum", 0, "with -scenario: scheduler quantum in cycles (0 = spec default)")
	scenarioPolicy := flag.String("scenario-policy", "", "with -scenario: Icache switch policy, flush or pid (empty = spec default)")
	profileOut := flag.String("profile-out", "", "write the per-PC writeback profile as JSON (mipsx-lint -cost -profile reads it)")
	benchName := flag.String("bench", "", "run the named built-in tinyc benchmark instead of a source file")
	specPath := flag.String("spec", "", "machine-spec JSON file naming the design point to run (default: the machine as built)")
	flag.Parse()

	if *traceOut != "" && *obsStream != "" {
		fmt.Fprintln(os.Stderr, "mipsx-run: -trace-out and -obs-stream are mutually exclusive (the stream is the same bytes, unbuffered)")
		os.Exit(2)
	}
	if *obsWindow < 0 {
		fmt.Fprintln(os.Stderr, "mipsx-run: -obs-window must be >= 0")
		os.Exit(2)
	}
	if *obsWindowOut != "" && *obsWindow == 0 {
		fmt.Fprintln(os.Stderr, "mipsx-run: -obs-window-out needs -obs-window N")
		os.Exit(2)
	}

	if *scenarioList != "" {
		runScenario(*scenarioList, *specPath, *scenarioQuantum, *scenarioPolicy,
			*obsStream, *obsWindow, *obsWindowOut, *breakdown, *breakdownOut)
		return
	}

	var src []byte
	var err error
	switch {
	case *benchName != "":
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: mipsx-run -bench NAME [flags]")
			os.Exit(2)
		}
		*tiny = true
		found := false
		for _, b := range tinyc.Benchmarks() {
			if b.Name == *benchName {
				src, found = []byte(b.Source), true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "mipsx-run: unknown benchmark %q (see internal/tinyc)\n", *benchName)
			os.Exit(2)
		}
	case flag.NArg() == 1:
		if src, err = os.ReadFile(flag.Arg(0)); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: mipsx-run [flags] prog.{s,t}")
		os.Exit(2)
	}

	// The machine is constructed only through a validated spec; -check and
	// -fast are simulator knobs outside the spec, applied after Build. The
	// spec is resolved before the toolchain runs: tinyc compilation and the
	// lint verifier must target the spec's branch scheme, not the default —
	// code scheduled for two delay slots is wrong on a one-slot machine.
	ms := spec.Default()
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			fail(err)
		}
		if ms, err = spec.Parse(b); err != nil {
			fail(err)
		}
	}
	scheme, err := ms.Scheme()
	if err != nil {
		fail(err)
	}
	cfg, err := ms.Build()
	if err != nil {
		fail(err)
	}

	var im *asm.Image
	if *tiny {
		im, err = tinyc.Build(string(src), scheme, nil)
		if err != nil {
			fail(err)
		}
	} else {
		im, err = asm.AssembleSource(string(src), 0)
		if err != nil {
			fail(err)
		}
	}

	if *doLint {
		// The dynamic checker (-check) catches hazards the program happens to
		// execute; the static verifier proves their absence up front.
		lcfg := lint.DefaultConfig()
		lcfg.Slots = scheme.Slots
		rep := lint.CheckImage(im, lcfg)
		fmt.Fprint(os.Stderr, rep.String())
		if rep.HasErrors() {
			fmt.Fprintln(os.Stderr, "mipsx-run: refusing to run: program has interlock hazards (see above)")
			os.Exit(1)
		}
	}
	cfg.Pipeline.CheckHazards = *check
	// The fast tier composes with every observation flag except the event
	// tracer (per-cycle events force the accurate path, making -fast a
	// no-op): -profile-out still charges the PCProfile at WB-equivalent
	// retirement, -breakdown still conserves the attribution ledger.
	cfg.FastTier = *fast

	if *tiny && *profile {
		// First pass: collect branch outcomes; second pass: rebuild.
		m := core.New(cfg, os.Stdout)
		m.Load(im)
		var rec trace.Recorder
		rec.DiscardInstrs = true // only branch outcomes feed the profile
		rec.Attach(m.CPU)
		if _, err := m.Run(*maxCycles); err != nil {
			fail(err)
		}
		prof := trace.Profile(im, rec.Branches)
		im, err = tinyc.Build(string(src), scheme, prof)
		if err != nil {
			fail(err)
		}
		fmt.Println("-- profiled rebuild --")
	}

	m := core.New(cfg, os.Stdout)
	// Observation is attached only when asked for: the unobserved machine
	// keeps the nil-sink fast path.
	observed := *breakdown || *breakdownOut != "" || *traceOut != "" || *obsStream != "" || *obsWindow > 0
	var streamFile *os.File
	var win *obs.WindowedLedger
	var winStream *obs.WindowStreamWriter
	if observed {
		s := obs.NewMachineSink()
		if *traceOut != "" {
			s.Tracer = &obs.Tracer{MaxEvents: *traceEvents, Instrs: true}
		}
		if *obsStream != "" {
			var err error
			if streamFile, err = os.Create(*obsStream); err != nil {
				fail(err)
			}
			s.Tracer = &obs.Tracer{Instrs: true}
			if err := s.Tracer.StartStream(streamFile, 0); err != nil {
				fail(err)
			}
		}
		if *obsWindow > 0 {
			win = obs.NewWindowedLedger(obs.MachineCauseNames, uint64(*obsWindow))
			if *obsWindowOut != "" {
				f, err := os.Create(*obsWindowOut)
				if err != nil {
					fail(err)
				}
				defer f.Close()
				if winStream, err = obs.NewWindowStreamWriter(f, uint64(*obsWindow)); err != nil {
					fail(err)
				}
				win.OnWindow(winStream.Write)
			}
			s.Ledger.AttachWindows(win)
		}
		m.Observe(s)
	}
	m.Load(im)
	var pcProf *obs.PCProfile
	if *profileOut != "" {
		pcProf = obs.NewPCProfile(uint32(im.Base), len(im.Words))
		m.CPU.Prof = pcProf
	}
	for i := 0; i < *pipe && !m.Console.Halted; i++ {
		fmt.Println(m.CPU.Snapshot())
		m.CPU.Step()
	}
	cycles, err := m.Run(*maxCycles)
	if err != nil {
		fail(err)
	}
	if win != nil {
		win.Flush()
		if err := win.Err(); err != nil {
			fail(err)
		}
		if winStream != nil {
			fmt.Fprintf(os.Stderr, "mipsx-run: streamed %d ledger windows (%d cycles each) to %s\n",
				winStream.Count(), *obsWindow, *obsWindowOut)
		}
	}
	if observed {
		if err := m.VerifyAttribution(); err != nil {
			fail(err)
		}
	}
	if *obsStream != "" {
		if err := m.Obs.Tracer.CloseStream(); err != nil {
			fail(err)
		}
		if err := streamFile.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mipsx-run: streamed %d trace events to %s (0 dropped)\n",
			m.Obs.Tracer.Len(), *obsStream)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := m.Obs.Tracer.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mipsx-run: wrote %d trace events to %s (%d dropped at the %d-event bound)\n",
			m.Obs.Tracer.Len(), *traceOut, m.Obs.Tracer.Dropped(), *traceEvents)
		if d := m.Obs.Tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "mipsx-run: WARNING: trace is truncated — %d events were dropped at the %d-event bound; raise -trace-events or use -obs-stream\n",
				d, *traceEvents)
		}
	}
	if *profileOut != "" {
		b, err := pcProf.Doc().Marshal()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*profileOut, b, 0o644); err != nil {
			fail(err)
		}
	}
	if *breakdownOut != "" {
		b, err := m.ObsReport().Marshal()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*breakdownOut, b, 0o644); err != nil {
			fail(err)
		}
	}
	if *breakdown {
		fmt.Print(m.ObsReport().DecompositionTable())
	}
	if *check {
		for _, v := range m.CPU.Violations {
			fmt.Fprintf(os.Stderr, "hazard: %v\n", v)
		}
	}
	if *stats {
		s := m.Stats()
		p := s.Pipeline
		fmt.Printf("cycles            %d\n", cycles)
		fmt.Printf("instructions      %d (nops %d, squashed %d)\n", p.Issued(), p.Nops, p.Squashed)
		fmt.Printf("CPI               %.3f\n", s.CPI())
		fmt.Printf("no-op fraction    %.1f%%\n", 100*p.NopFraction())
		fmt.Printf("branches          %d (taken %d, cycles/branch %.2f)\n",
			p.Branches, p.TakenBranches, p.CyclesPerBranch())
		fmt.Printf("loads/stores      %d/%d\n", p.Loads, p.Stores)
		fmt.Printf("icache            %.1f%% miss, %d stall cycles\n",
			100*s.Icache.MissRatio(), s.Icache.StallCycles)
		fmt.Printf("ecache            %.1f%% miss, %d stall cycles\n",
			100*s.Ecache.MissRatio(), s.Ecache.StallCycles)
		fmt.Printf("ifetch cost       %.3f cycles\n", s.IfetchCost())
		fmt.Printf("sustained MIPS    %.2f @ %.0f MHz\n", s.SustainedMIPS(), core.ClockMHz)
	}
}

// runScenario executes comma-separated built-in benchmarks as one
// multiprogrammed scenario (internal/scenario) with the streaming
// observability the flags ask for: -obs-stream tails trace events on the
// scenario-global clock, -obs-window/-obs-window-out stream the per-context
// windowed ledger. This is the production path for watching Icache pollution
// and flush-refill cost evolve around context switches on multi-million
// cycle runs under O(window) memory.
func runScenario(list, specPath string, quantum int, policy, obsStream string, window int, windowOut string, breakdown bool, breakdownOut string) {
	byName := make(map[string]tinyc.Benchmark)
	for _, b := range tinyc.Benchmarks() {
		byName[b.Name] = b
	}
	var programs []scenario.Program
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		b, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "mipsx-run: unknown scenario benchmark %q (see internal/tinyc)\n", name)
			os.Exit(2)
		}
		programs = append(programs, scenario.Program{Name: b.Name, Source: b.Source, Expect: b.Expect()})
	}

	ms := spec.Default()
	if specPath != "" {
		b, err := os.ReadFile(specPath)
		if err != nil {
			fail(err)
		}
		if ms, err = spec.Parse(b); err != nil {
			fail(err)
		}
	}
	scn := spec.DefaultScenario()
	if ms.Scenario != nil {
		scn = *ms.Scenario
	}
	if quantum > 0 {
		scn.Quantum = quantum
	}
	if policy != "" {
		scn.Policy = policy
	}
	scn.Window = window
	ms.Scenario = &scn
	if err := ms.Validate(); err != nil {
		fail(err)
	}
	scheme, err := ms.Scheme()
	if err != nil {
		fail(err)
	}

	var opts scenario.RunOpts
	if obsStream != "" {
		f, err := os.Create(obsStream)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		opts.Tracer = &obs.Tracer{}
		if err := opts.Tracer.StartStream(f, 0); err != nil {
			fail(err)
		}
	}
	var winStream *obs.WindowStreamWriter
	if windowOut != "" {
		f, err := os.Create(windowOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if winStream, err = obs.NewWindowStreamWriter(f, uint64(window)); err != nil {
			fail(err)
		}
		opts.WindowEmit = winStream.Write
	}

	res, err := scenario.RunWith(programs, scheme, ms, opts)
	if err != nil {
		fail(err)
	}
	if opts.Tracer != nil {
		if err := opts.Tracer.CloseStream(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mipsx-run: streamed %d trace events to %s (0 dropped)\n",
			opts.Tracer.Len(), obsStream)
	}
	if winStream != nil {
		fmt.Fprintf(os.Stderr, "mipsx-run: streamed %d ledger windows (%d cycles each) to %s\n",
			winStream.Count(), window, windowOut)
	}

	fmt.Printf("scenario %s: quantum %d, policy %s, switch cost %d\n",
		list, scn.Quantum, scn.Policy, scn.SwitchCost)
	for _, p := range res.Programs {
		fmt.Printf("  %-14s %12d cycles %10d instructions\n", p.Name, p.Cycles, p.Instructions)
	}
	fmt.Printf("  %-14s %12d cycles (%d switches, %d switch cycles, %d flush stalls)\n",
		"total", res.Cycles, res.Switches, res.SwitchCycles, res.FlushStalls)
	fmt.Printf("  CPI %.4f over %d instructions\n", res.CPI(), res.Instructions)
	if breakdownOut != "" {
		b, err := res.Obs.Marshal()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(breakdownOut, b, 0o644); err != nil {
			fail(err)
		}
	}
	if breakdown {
		fmt.Print(res.Obs.DecompositionTable())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mipsx-run:", err)
	os.Exit(1)
}
