// Command mipsx-trace generates synthetic large-program instruction traces
// (the stand-ins for the Stanford benchmark and ATUM traces) and runs them
// against configurable Icache and Ecache organizations — the trace-driven
// methodology behind the paper's cache numbers.
//
// Usage:
//
//	mipsx-trace -profile pascal -refs 300000
//	mipsx-trace -profile lisp -fetchback 1 -penalty 3
//	mipsx-trace -profile fp -dump 50          # show the first 50 addresses
//
// The viz subcommand renders observability artifacts as CPI-decomposition
// tables — either a single machine's attribution report (mipsx-run
// -breakdown-out) or a whole bench document (mipsx-bench -json):
//
//	mipsx-trace viz breakdown.json
//	mipsx-trace viz -cells BENCH_pr.json
//	mipsx-trace viz SCENARIO_baseline.json    # per-cell pollution breakdown
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ecache"
	"repro/internal/experiments"
	"repro/internal/icache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "viz" {
		viz(os.Args[2:])
		return
	}
	profile := flag.String("profile", "pascal", "workload profile: pascal, lisp, fp")
	codeKW := flag.Int("code-kwords", 0, "static code footprint in K words (0 = profile default)")
	refs := flag.Int("refs", 300_000, "trace length in instruction references")
	fetchBack := flag.Int("fetchback", 2, "words fetched per Icache miss")
	penalty := flag.Int("penalty", 2, "Icache miss service cycles")
	dump := flag.Int("dump", 0, "print the first N trace addresses and exit")
	flag.Parse()

	var cfg trace.SynthConfig
	switch *profile {
	case "pascal":
		cfg = trace.PascalSynth(*codeKW * 1024)
	case "lisp":
		cfg = trace.LispSynth(*codeKW * 1024)
	case "fp":
		cfg = trace.FPSynth(*codeKW * 1024)
	default:
		fmt.Fprintf(os.Stderr, "mipsx-trace: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	tr := trace.NewSynthesizer(cfg).Generate(*refs)

	if *dump > 0 {
		n := *dump
		if n > len(tr) {
			n = len(tr)
		}
		for _, a := range tr[:n] {
			fmt.Printf("%06x\n", a)
		}
		return
	}

	icfg := spec.Default().ICache.WithFetch(*fetchBack, *penalty).BuildICache()
	m := mem.New()
	bus := mem.DefaultBus()
	e := ecache.New(spec.DefaultECache().BuildECache(), m, bus)
	ic := icache.New(icfg, e)
	for _, a := range tr {
		ic.Fetch(a)
	}

	fmt.Printf("profile          %s (%d words static code)\n", *profile, cfg.CodeWords)
	fmt.Printf("references       %d\n", len(tr))
	fmt.Printf("icache           %d sets × %d ways × %d words, fetch-back %d, %d-cycle miss\n",
		icfg.Sets, icfg.Ways, icfg.BlockWords, icfg.FetchBack, icfg.MissPenalty)
	fmt.Printf("icache miss      %.2f%%\n", 100*ic.Stats.MissRatio())
	fmt.Printf("ifetch cost      %.3f cycles (icache stalls only)\n", ic.Stats.FetchCost())
	fmt.Printf("ecache miss      %.2f%% (%d accesses)\n",
		100*e.Stats.MissRatio(), e.Stats.Accesses())
	fmt.Printf("bus traffic      %d words\n", bus.WordsCarried)
}

// viz renders an observability artifact as a CPI-decomposition table. The
// file's schema field selects the renderer: an obs attribution report
// prints directly; a bench document prints the engine-wide attribution
// (and, with -cells, each cell's own breakdown).
func viz(args []string) {
	fs := flag.NewFlagSet("viz", flag.ExitOnError)
	cells := fs.Bool("cells", false, "with a bench document: also print each cell's attribution")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mipsx-trace viz [-cells] report.json")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		fail(fmt.Errorf("%s: %w", fs.Arg(0), err))
	}
	switch probe.Schema {
	case obs.ReportSchema:
		rep, err := obs.ParseReport(b)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.DecompositionTable())
	case experiments.BenchSchema:
		doc, err := experiments.ParseBenchDoc(b)
		if err != nil {
			fail(err)
		}
		fmt.Printf("bench document: %d cells, %d cycles simulated\n\n", doc.Cells, doc.TotalCyclesSimulated)
		fmt.Print(attrTable(doc.Attribution, doc.TotalCyclesSimulated).DecompositionTable())
		if doc.ObsOverhead != nil {
			fmt.Printf("\n%s\n", doc.ObsOverhead)
		}
		if *cells {
			for _, t := range doc.CellTimings {
				if len(t.Attribution) == 0 {
					continue
				}
				var total uint64
				for _, v := range t.Attribution {
					total += v
				}
				fmt.Printf("\ncell %s (%d cycles)\n", t.ID, total)
				fmt.Print(attrTable(t.Attribution, total).DecompositionTable())
			}
		}
	case experiments.ScenarioSchema:
		doc, err := experiments.ParseScenarioDoc(b)
		if err != nil {
			fail(err)
		}
		fmt.Printf("scenario document: %d cells (%s, switch cost %d)\n", len(doc.Cells), doc.Scheme, doc.SwitchCost)
		for i := range doc.Cells {
			c := &doc.Cells[i]
			r := &c.Result
			fmt.Printf("\n%s quantum=%d policy=%s: %d cycles (CPI %.4f), %d switches, %d icache misses\n",
				c.Workload, c.Quantum, c.Policy, r.Cycles, r.CPI(), r.Switches, r.IcacheMisses)
			if r.Obs != nil {
				// The decomposition is the pollution breakdown: under flush
				// the context-switch/flush-refill rows carry the scheduler
				// overhead and icache-miss carries the cold-cache refills;
				// under pid all three shrink to the workload's own misses.
				fmt.Print(r.Obs.DecompositionTable())
			}
		}
	default:
		fail(fmt.Errorf("%s: unrecognized schema %q (want %q, %q or %q)",
			fs.Arg(0), probe.Schema, obs.ReportSchema, experiments.BenchSchema, experiments.ScenarioSchema))
	}
}

// attrTable lifts a cause → cycles map into an obs report so the standard
// decomposition renderer (and its conservation line) applies.
func attrTable(attr map[string]uint64, cycles uint64) *obs.Report {
	rep := &obs.Report{Schema: obs.ReportSchema, Cycles: cycles}
	for cause, n := range attr {
		rep.Causes = append(rep.Causes, obs.CauseCycles{Cause: cause, Cycles: n})
	}
	sort.Slice(rep.Causes, func(i, j int) bool { return rep.Causes[i].Cause < rep.Causes[j].Cause })
	return rep
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mipsx-trace:", err)
	os.Exit(1)
}
