// Command mipsx-trace generates synthetic large-program instruction traces
// (the stand-ins for the Stanford benchmark and ATUM traces) and runs them
// against configurable Icache and Ecache organizations — the trace-driven
// methodology behind the paper's cache numbers.
//
// Usage:
//
//	mipsx-trace -profile pascal -refs 300000
//	mipsx-trace -profile lisp -fetchback 1 -penalty 3
//	mipsx-trace -profile fp -dump 50          # show the first 50 addresses
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ecache"
	"repro/internal/icache"
	"repro/internal/mem"
	"repro/internal/trace"
)

func main() {
	profile := flag.String("profile", "pascal", "workload profile: pascal, lisp, fp")
	codeKW := flag.Int("code-kwords", 0, "static code footprint in K words (0 = profile default)")
	refs := flag.Int("refs", 300_000, "trace length in instruction references")
	fetchBack := flag.Int("fetchback", 2, "words fetched per Icache miss")
	penalty := flag.Int("penalty", 2, "Icache miss service cycles")
	dump := flag.Int("dump", 0, "print the first N trace addresses and exit")
	flag.Parse()

	var cfg trace.SynthConfig
	switch *profile {
	case "pascal":
		cfg = trace.PascalSynth(*codeKW * 1024)
	case "lisp":
		cfg = trace.LispSynth(*codeKW * 1024)
	case "fp":
		cfg = trace.FPSynth(*codeKW * 1024)
	default:
		fmt.Fprintf(os.Stderr, "mipsx-trace: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	tr := trace.NewSynthesizer(cfg).Generate(*refs)

	if *dump > 0 {
		n := *dump
		if n > len(tr) {
			n = len(tr)
		}
		for _, a := range tr[:n] {
			fmt.Printf("%06x\n", a)
		}
		return
	}

	icfg := icache.DefaultConfig()
	icfg.FetchBack = *fetchBack
	icfg.MissPenalty = *penalty
	m := mem.New()
	bus := mem.DefaultBus()
	e := ecache.New(ecache.DefaultConfig(), m, bus)
	ic := icache.New(icfg, e)
	for _, a := range tr {
		ic.Fetch(a)
	}

	fmt.Printf("profile          %s (%d words static code)\n", *profile, cfg.CodeWords)
	fmt.Printf("references       %d\n", len(tr))
	fmt.Printf("icache           %d sets × %d ways × %d words, fetch-back %d, %d-cycle miss\n",
		icfg.Sets, icfg.Ways, icfg.BlockWords, icfg.FetchBack, icfg.MissPenalty)
	fmt.Printf("icache miss      %.2f%%\n", 100*ic.Stats.MissRatio())
	fmt.Printf("ifetch cost      %.3f cycles (icache stalls only)\n",
		1+float64(ic.Stats.StallCycles)/float64(ic.Stats.Fetches))
	fmt.Printf("ecache miss      %.2f%% (%d accesses)\n",
		100*e.Stats.MissRatio(), e.Stats.Accesses())
	fmt.Printf("bus traffic      %d words\n", bus.WordsCarried)
}
