// Command mipsx-trace generates synthetic large-program instruction traces
// (the stand-ins for the Stanford benchmark and ATUM traces) and runs them
// against configurable Icache and Ecache organizations — the trace-driven
// methodology behind the paper's cache numbers.
//
// Usage:
//
//	mipsx-trace -profile pascal -refs 300000
//	mipsx-trace -profile lisp -fetchback 1 -penalty 3
//	mipsx-trace -profile fp -dump 50          # show the first 50 addresses
//
// The viz subcommand renders observability artifacts as CPI-decomposition
// tables — a single machine's attribution report (mipsx-run -breakdown-out),
// a whole bench document (mipsx-bench -json), a scenario sweep, or a
// windowed-ledger time-series (mipsx-run -obs-window-out):
//
//	mipsx-trace viz breakdown.json
//	mipsx-trace viz -cells BENCH_pr.json
//	mipsx-trace viz SCENARIO_baseline.json    # per-cell pollution breakdown
//	mipsx-trace viz windows.jsonl             # mipsx-obswin/v1 time-series
//
// -follow tails a live mipsx-obswin/v1 stream (a file still being written,
// or a pipe) and re-renders a rolling CPI-decomposition table — plus the
// per-context breakdown when the producer is a scenario run — as each
// window closes:
//
//	mipsx-run -scenario bubblesort,sieve -obs-window 16384 -obs-window-out w.jsonl &
//	mipsx-trace -follow w.jsonl
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/ecache"
	"repro/internal/experiments"
	"repro/internal/icache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "viz" {
		viz(os.Args[2:])
		return
	}
	followPath := flag.String("follow", "", "tail a mipsx-obswin/v1 window stream and re-render the rolling CPI decomposition")
	followOnce := flag.Bool("once", false, "with -follow: render what the stream holds now and exit instead of tailing")
	followInterval := flag.Duration("interval", 250*time.Millisecond, "with -follow: poll interval while waiting for new windows")
	profile := flag.String("profile", "pascal", "workload profile: pascal, lisp, fp")
	codeKW := flag.Int("code-kwords", 0, "static code footprint in K words (0 = profile default)")
	refs := flag.Int("refs", 300_000, "trace length in instruction references")
	fetchBack := flag.Int("fetchback", 2, "words fetched per Icache miss")
	penalty := flag.Int("penalty", 2, "Icache miss service cycles")
	dump := flag.Int("dump", 0, "print the first N trace addresses and exit")
	flag.Parse()

	if *followPath != "" {
		if err := follow(*followPath, *followInterval, *followOnce, os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	var cfg trace.SynthConfig
	switch *profile {
	case "pascal":
		cfg = trace.PascalSynth(*codeKW * 1024)
	case "lisp":
		cfg = trace.LispSynth(*codeKW * 1024)
	case "fp":
		cfg = trace.FPSynth(*codeKW * 1024)
	default:
		fmt.Fprintf(os.Stderr, "mipsx-trace: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	tr := trace.NewSynthesizer(cfg).Generate(*refs)

	if *dump > 0 {
		n := *dump
		if n > len(tr) {
			n = len(tr)
		}
		for _, a := range tr[:n] {
			fmt.Printf("%06x\n", a)
		}
		return
	}

	icfg := spec.Default().ICache.WithFetch(*fetchBack, *penalty).BuildICache()
	m := mem.New()
	bus := mem.DefaultBus()
	e := ecache.New(spec.DefaultECache().BuildECache(), m, bus)
	ic := icache.New(icfg, e)
	for _, a := range tr {
		ic.Fetch(a)
	}

	fmt.Printf("profile          %s (%d words static code)\n", *profile, cfg.CodeWords)
	fmt.Printf("references       %d\n", len(tr))
	fmt.Printf("icache           %d sets × %d ways × %d words, fetch-back %d, %d-cycle miss\n",
		icfg.Sets, icfg.Ways, icfg.BlockWords, icfg.FetchBack, icfg.MissPenalty)
	fmt.Printf("icache miss      %.2f%%\n", 100*ic.Stats.MissRatio())
	fmt.Printf("ifetch cost      %.3f cycles (icache stalls only)\n", ic.Stats.FetchCost())
	fmt.Printf("ecache miss      %.2f%% (%d accesses)\n",
		100*e.Stats.MissRatio(), e.Stats.Accesses())
	fmt.Printf("bus traffic      %d words\n", bus.WordsCarried)
}

// viz renders an observability artifact as a CPI-decomposition table. The
// file's schema field selects the renderer: an obs attribution report
// prints directly; a bench document prints the engine-wide attribution
// (and, with -cells, each cell's own breakdown).
func viz(args []string) {
	fs := flag.NewFlagSet("viz", flag.ExitOnError)
	cells := fs.Bool("cells", false, "with a bench document: also print each cell's attribution")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mipsx-trace viz [-cells] report.json")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	b, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	// A window stream is line-framed JSONL, not one JSON document — probe
	// its first line before attempting a whole-file parse.
	if first := firstLine(b); isWindowHeader(first) {
		doc, err := obs.ParseWindowStream(bytes.NewReader(b))
		if err != nil {
			fail(fmt.Errorf("%s: %w", fs.Arg(0), err))
		}
		if err := renderWindowDoc(doc, os.Stdout); err != nil {
			fail(fmt.Errorf("%s: %w", fs.Arg(0), err))
		}
		return
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		fail(fmt.Errorf("%s: not a recognized observability document: %w", fs.Arg(0), err))
	}
	switch probe.Schema {
	case obs.ReportSchema:
		rep, err := obs.ParseReport(b)
		if err != nil {
			fail(err)
		}
		fmt.Print(rep.DecompositionTable())
	case experiments.BenchSchema:
		doc, err := experiments.ParseBenchDoc(b)
		if err != nil {
			fail(err)
		}
		fmt.Printf("bench document: %d cells, %d cycles simulated\n\n", doc.Cells, doc.TotalCyclesSimulated)
		fmt.Print(attrTable(doc.Attribution, doc.TotalCyclesSimulated).DecompositionTable())
		if doc.ObsOverhead != nil {
			fmt.Printf("\n%s\n", doc.ObsOverhead)
		}
		if *cells {
			for _, t := range doc.CellTimings {
				if len(t.Attribution) == 0 {
					continue
				}
				var total uint64
				for _, v := range t.Attribution {
					total += v
				}
				fmt.Printf("\ncell %s (%d cycles)\n", t.ID, total)
				fmt.Print(attrTable(t.Attribution, total).DecompositionTable())
			}
		}
	case experiments.ScenarioSchema:
		doc, err := experiments.ParseScenarioDoc(b)
		if err != nil {
			fail(err)
		}
		fmt.Printf("scenario document: %d cells (%s, switch cost %d)\n", len(doc.Cells), doc.Scheme, doc.SwitchCost)
		for i := range doc.Cells {
			c := &doc.Cells[i]
			r := &c.Result
			fmt.Printf("\n%s quantum=%d policy=%s: %d cycles (CPI %.4f), %d switches, %d icache misses\n",
				c.Workload, c.Quantum, c.Policy, r.Cycles, r.CPI(), r.Switches, r.IcacheMisses)
			if r.Obs != nil {
				// The decomposition is the pollution breakdown: under flush
				// the context-switch/flush-refill rows carry the scheduler
				// overhead and icache-miss carries the cold-cache refills;
				// under pid all three shrink to the workload's own misses.
				fmt.Print(r.Obs.DecompositionTable())
			}
		}
	default:
		fail(fmt.Errorf("%s: unrecognized schema %q (want %q, %q, %q or %q)",
			fs.Arg(0), probe.Schema, obs.ReportSchema, experiments.BenchSchema,
			experiments.ScenarioSchema, obs.WindowSchema))
	}
}

// firstLine returns the bytes up to (not including) the first newline.
func firstLine(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i]
	}
	return b
}

// isWindowHeader reports whether line is a mipsx-obswin/v1 stream header.
func isWindowHeader(line []byte) bool {
	var probe struct {
		Schema string `json:"schema"`
	}
	return json.Unmarshal(line, &probe) == nil && probe.Schema == obs.WindowSchema
}

// renderWindowDoc prints a windowed time-series: the per-window conservation
// verdict, the cause evolution over windows, and the cumulative
// decomposition. A conservation failure is an error — the caller exits
// nonzero rather than printing a partial table as if it were sound.
func renderWindowDoc(doc *obs.WindowDoc, w io.Writer) error {
	if err := doc.Check(); err != nil {
		return err
	}
	fmt.Fprintf(w, "window stream: %d windows × %d cycles (%d cycles total)\n",
		len(doc.Windows), doc.Window, doc.Total())
	for i := range doc.Windows {
		win := &doc.Windows[i]
		fmt.Fprintf(w, "\n-- window %d (start %d, %d cycles) --\n", win.Index, win.Start, win.Cycles)
		fmt.Fprint(w, windowReport(win).DecompositionTable())
		writeContexts(w, win)
	}
	fmt.Fprintf(w, "\n-- cumulative --\n")
	fmt.Fprint(w, attrTable(doc.CauseTotals(), doc.Total()).DecompositionTable())
	return nil
}

// windowReport lifts one window into an obs report for the standard
// decomposition renderer.
func windowReport(win *obs.Window) *obs.Report {
	rep := &obs.Report{Schema: obs.ReportSchema, Cycles: win.Cycles}
	rep.Causes = append(rep.Causes, win.Causes...)
	return rep
}

// writeContexts prints a window's per-context breakdown (scenario streams).
func writeContexts(w io.Writer, win *obs.Window) {
	for _, cs := range win.Contexts {
		fmt.Fprintf(w, "  context %-14s %10d cycles:", cs.Context, cs.Cycles)
		for _, c := range cs.Causes {
			fmt.Fprintf(w, " %s=%d", c.Cause, c.Cycles)
		}
		fmt.Fprintln(w)
	}
}

// followState replays a window stream line by line, maintaining the rolling
// cumulative attribution the live renderer shows. Separated from the I/O
// loop so the parsing/rendering logic is testable on byte slices.
type followState struct {
	header  bool
	size    uint64
	windows uint64
	cum     map[string]uint64
	cycles  uint64
	last    *obs.Window
}

// feedLine consumes one complete line (header first, then windows),
// returning whether a new window was added.
func (st *followState) feedLine(line []byte) (bool, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return false, nil
	}
	if !st.header {
		if !isWindowHeader(line) {
			return false, fmt.Errorf("not a %s stream header: %s", obs.WindowSchema, line)
		}
		var h struct {
			Window uint64 `json:"window"`
		}
		if err := json.Unmarshal(line, &h); err != nil {
			return false, err
		}
		st.header = true
		st.size = h.Window
		st.cum = make(map[string]uint64)
		return false, nil
	}
	var win obs.Window
	if err := json.Unmarshal(line, &win); err != nil {
		return false, fmt.Errorf("bad window line: %w", err)
	}
	if err := win.Check(); err != nil {
		return false, err
	}
	for _, c := range win.Causes {
		st.cum[c.Cause] += c.Cycles
	}
	st.cycles += win.Cycles
	st.windows++
	st.last = &win
	return true, nil
}

// render prints the rolling view: the newest window's decomposition with its
// per-context breakdown, then the cumulative table across all windows seen.
func (st *followState) render(w io.Writer) {
	if st.last == nil {
		fmt.Fprintf(w, "waiting for windows (%d-cycle windows)\n", st.size)
		return
	}
	fmt.Fprintf(w, "\n== window %d (start %d, %d cycles; %d windows, %d cycles so far) ==\n",
		st.last.Index, st.last.Start, st.last.Cycles, st.windows, st.cycles)
	fmt.Fprint(w, windowReport(st.last).DecompositionTable())
	writeContexts(w, st.last)
	fmt.Fprintf(w, "-- cumulative --\n")
	fmt.Fprint(w, attrTable(st.cum, st.cycles).DecompositionTable())
}

// follow tails a window stream file or pipe: complete lines are consumed as
// they appear (a trailing partial line waits for its newline), each closed
// window re-renders the rolling view. With once, it renders the stream's
// current state a single time and returns.
func follow(path string, interval time.Duration, once bool, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st := &followState{}
	buf := make([]byte, 64<<10)
	var pending []byte
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			pending = append(pending, buf[:n]...)
			for {
				i := bytes.IndexByte(pending, '\n')
				if i < 0 {
					break
				}
				line := append([]byte(nil), pending[:i]...)
				pending = pending[i+1:]
				fresh, err := st.feedLine(line)
				if err != nil {
					return err
				}
				if fresh && !once {
					st.render(out)
				}
			}
		}
		if rerr == io.EOF {
			if once {
				if !st.header {
					return fmt.Errorf("%s: no window-stream header yet", path)
				}
				st.render(out)
				return nil
			}
			time.Sleep(interval)
			continue
		}
		if rerr != nil {
			return rerr
		}
	}
}

// attrTable lifts a cause → cycles map into an obs report so the standard
// decomposition renderer (and its conservation line) applies.
func attrTable(attr map[string]uint64, cycles uint64) *obs.Report {
	rep := &obs.Report{Schema: obs.ReportSchema, Cycles: cycles}
	for cause, n := range attr {
		rep.Causes = append(rep.Causes, obs.CauseCycles{Cause: cause, Cycles: n})
	}
	sort.Slice(rep.Causes, func(i, j int) bool { return rep.Causes[i].Cause < rep.Causes[j].Cause })
	return rep
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mipsx-trace:", err)
	os.Exit(1)
}
