package main

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

const sampleStream = `{"schema":"mipsx-obswin/v1","window":16}
{"index":0,"start":0,"cycles":16,"causes":[{"cause":"execute","cycles":14},{"cause":"icache-miss","cycles":2}]}
{"index":1,"start":16,"cycles":10,"causes":[{"cause":"execute","cycles":10}],"contexts":[{"context":"prog","cycles":10,"causes":[{"cause":"execute","cycles":10}]}]}
`

func TestFollowStateReplaysStream(t *testing.T) {
	st := &followState{}
	var fresh int
	for _, line := range strings.Split(sampleStream, "\n") {
		ok, err := st.feedLine([]byte(line))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			fresh++
		}
	}
	if fresh != 2 || st.windows != 2 || st.cycles != 26 {
		t.Fatalf("fresh=%d windows=%d cycles=%d, want 2/2/26", fresh, st.windows, st.cycles)
	}
	var out strings.Builder
	st.render(&out)
	s := out.String()
	for _, want := range []string{"window 1", "2 windows, 26 cycles", "context prog", "cumulative", "conservation: sum(causes) == 26 cycles ok"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFollowStateRejectsBadStream(t *testing.T) {
	st := &followState{}
	if _, err := st.feedLine([]byte(`{"schema":"mipsx-obs/v1"}`)); err == nil {
		t.Fatal("wrong-schema header must be rejected")
	}
	ok := &followState{}
	if _, err := ok.feedLine([]byte(`{"schema":"mipsx-obswin/v1","window":16}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ok.feedLine([]byte(`{nope`)); err == nil {
		t.Fatal("malformed window line must be rejected")
	}
	// A window violating per-window conservation fails loudly mid-stream.
	if _, err := ok.feedLine([]byte(`{"index":0,"start":0,"cycles":9,"causes":[{"cause":"execute","cycles":5}]}`)); err == nil {
		t.Fatal("non-conserving window must be rejected")
	}
}

func TestIsWindowHeader(t *testing.T) {
	if !isWindowHeader([]byte(`{"schema":"mipsx-obswin/v1","window":4}`)) {
		t.Fatal("valid header not recognized")
	}
	for _, bad := range []string{`{"schema":"mipsx-obs/v1"}`, `not json`, ``} {
		if isWindowHeader([]byte(bad)) {
			t.Fatalf("non-header accepted: %q", bad)
		}
	}
}

func TestRenderWindowDocFailsOnViolation(t *testing.T) {
	doc := &obs.WindowDoc{Schema: obs.WindowSchema, Window: 8, Windows: []obs.Window{
		{Index: 0, Start: 0, Cycles: 8, Causes: []obs.CauseCycles{{Cause: "execute", Cycles: 5}}},
	}}
	var out strings.Builder
	if err := renderWindowDoc(doc, &out); err == nil {
		t.Fatal("renderWindowDoc must fail on a non-conserving stream")
	}
	if out.Len() != 0 {
		t.Fatalf("no partial table may be printed on failure:\n%s", out.String())
	}
}
