// Command mipsx-explore sweeps the machine-spec design space and reports
// the Pareto frontier over (CPI, Icache area in bits, static code size) —
// Table 1 generalized from one axis to any spec field, with each point's
// cycle-attribution decomposition explaining its shape.
//
// A sweep is a base machine spec plus axes; each axis names a spec field by
// its JSON path ("icache.sets", "ecache.repl", "bus.latency", or the
// virtual "scheme") and the values to sweep. Points fan out through the
// same content-addressed experiment engine as mipsx-bench, so sweeps share
// cached simulations with the experiment tables and with earlier sweeps.
//
// Usage:
//
//	mipsx-explore                              # the Table 1 scheme axis
//	mipsx-explore -axis icache.sets=2,4,8 -axis icache.fetch_back=1,2,4
//	mipsx-explore -axis scheme=2/optional,1/none -benches fib,sieve
//	mipsx-explore -sweep sweep.json -json      # sweep definition from a file
//	mipsx-explore -cache .benchcache           # share mipsx-bench's cache
//	mipsx-explore -check EXPLORE_baseline.json # fail on any drift
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/spec"
	"repro/internal/tinyc"
)

func main() {
	sweepPath := flag.String("sweep", "", "sweep definition JSON ({\"base\": <spec>, \"axes\": [...]})")
	basePath := flag.String("base", "", "machine-spec JSON for the sweep's base point (default: the machine as built)")
	var axes []spec.Axis
	flag.Func("axis", "swept axis as path=v1,v2,... (repeatable; e.g. icache.sets=2,4,8 or scheme=2/optional,1/none)",
		func(s string) error {
			ax, err := spec.ParseAxis(s)
			if err != nil {
				return err
			}
			axes = append(axes, ax)
			return nil
		})
	benchList := flag.String("benches", "", "comma-separated tinyc benchmark names (default: the Table 1 integer suite)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for sweep cells (1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock budget (0 = none)")
	cacheDir := flag.String("cache", "", "directory backing the content-addressed result cache (empty = in-memory only)")
	progress := flag.Bool("progress", false, "print live progress to stderr")
	jsonOut := flag.Bool("json", false, "emit the mipsx-explore/v1 JSON document on stdout instead of tables")
	check := flag.String("check", "", "baseline JSON document; exit 1 if the sweep's document differs")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: mipsx-explore [flags]")
		os.Exit(2)
	}

	sw, err := loadSweep(*sweepPath, *basePath, axes)
	if err != nil {
		fail(err)
	}
	benches, err := pickBenches(*benchList)
	if err != nil {
		fail(err)
	}

	eng := experiments.Configure(*parallel, *timeout, false)
	store, err := experiments.NewMemoStore(*cacheDir)
	if err != nil {
		fail(err)
	}
	eng.Store = store
	if *progress {
		eng.Progress = os.Stderr
	}

	doc, err := experiments.Explore(context.Background(), sw, benches)
	if err != nil {
		fail(err)
	}
	eng.FlushProgress()
	fmt.Fprintf(os.Stderr, "mipsx-explore: %d points (%d on the frontier), memo hits %d of %d lookups\n",
		len(doc.Points), doc.FrontierSize, eng.MemoHits(), eng.MemoHits()+eng.MemoMisses())

	if *check != "" {
		want, err := os.ReadFile(*check)
		if err != nil {
			fail(err)
		}
		got, err := doc.Marshal()
		if err != nil {
			fail(err)
		}
		if string(want) != string(got) {
			fmt.Fprintf(os.Stderr, "mipsx-explore: document drifted from %s\n--- baseline ---\n%s--- current ---\n%s",
				*check, want, got)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mipsx-explore: document matches %s\n", *check)
	}

	if *jsonOut {
		b, err := doc.Marshal()
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(b)
		return
	}
	if *check == "" {
		fmt.Println(experiments.PointsTable(doc))
		fmt.Println(experiments.FrontierTable(doc))
	}
}

// loadSweep assembles the sweep from -sweep, -base and -axis (later sources
// layer over the file: -base replaces the file's base, -axis appends). With
// nothing given, the sweep is the Table 1 branch-scheme axis.
func loadSweep(sweepPath, basePath string, axes []spec.Axis) (spec.Sweep, error) {
	var sw spec.Sweep
	if sweepPath != "" {
		b, err := os.ReadFile(sweepPath)
		if err != nil {
			return sw, err
		}
		if sw, err = spec.ParseSweep(b); err != nil {
			return sw, err
		}
	}
	if basePath != "" {
		b, err := os.ReadFile(basePath)
		if err != nil {
			return sw, err
		}
		ms, err := spec.Parse(b)
		if err != nil {
			return sw, err
		}
		sw.Base = &ms
	}
	sw.Axes = append(sw.Axes, axes...)
	if len(sw.Axes) == 0 {
		// The default sweep is the paper's own: Table 1's six branch schemes.
		sw.Axes = []spec.Axis{spec.Table1Axis()}
	}
	return sw, nil
}

// pickBenches resolves a comma-separated benchmark list against the tinyc
// suite; empty means the Table 1 integer suite (Explore's default).
func pickBenches(list string) ([]tinyc.Benchmark, error) {
	if list == "" {
		return nil, nil
	}
	byName := make(map[string]tinyc.Benchmark)
	var names []string
	for _, b := range tinyc.Benchmarks() {
		byName[b.Name] = b
		names = append(names, b.Name)
	}
	var out []tinyc.Benchmark
	for _, name := range strings.Split(list, ",") {
		b, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (have %s)", name, strings.Join(names, ", "))
		}
		out = append(out, b)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mipsx-explore:", err)
	os.Exit(1)
}
