# Verification entry points. `make check` is the full gate a change must
# pass; CI and the tier-1 recipe in ROADMAP.md both run it.

GO ?= go

.PHONY: check build test vet vet-extra vulncheck race lint-suite cost-gate fast-gate fuzz bench bench-hot trace-sample explore-smoke explore-baseline scenario-gate scenario-baseline stream-gate

check: vet vet-extra vulncheck build test race lint-suite cost-gate explore-smoke scenario-gate stream-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Extra analyzers beyond the stock vet set. Their tool binaries are not part
# of the Go distribution, so they run only when installed (CI installs them;
# offline machines skip with a note):
#   go install golang.org/x/tools/go/analysis/passes/nilness/cmd/nilness@latest
#   go install golang.org/x/tools/go/analysis/passes/shadow/cmd/shadow@latest
# nilness is a hard gate; shadow is advisory (its heuristic flags idiomatic
# err reuse), so its findings print without failing the build.
vet-extra:
	@if command -v nilness >/dev/null 2>&1; then \
		$(GO) vet -vettool=$$(command -v nilness) ./...; \
	else echo "vet-extra: nilness not installed; skipping"; fi
	@if command -v shadow >/dev/null 2>&1; then \
		$(GO) vet -vettool=$$(command -v shadow) ./... || true; \
	else echo "vet-extra: shadow not installed; skipping"; fi

# Known-vulnerability scan over the module graph and reachable call paths.
# Needs network for the vuln DB, so it runs where govulncheck is installed
# (CI: go install golang.org/x/vuln/cmd/govulncheck@latest).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "vulncheck: govulncheck not installed; skipping"; fi

race:
	$(GO) test -race ./...

# Zero error-severity hazard findings across every benchmark × Table 1
# scheme — the software-interlock invariant of the whole toolchain.
lint-suite:
	$(GO) run ./cmd/mipsx-lint -suite

# Static-vs-dynamic differential gate: for every benchmark × Table 1 scheme
# the static cycle-cost model's prediction must EXACTLY equal the
# attribution ledger's execute/nop/squash-annul base causes. Runs inside
# `make test` too; the named target keeps the invariant visible in CI.
cost-gate:
	$(GO) test ./internal/experiments -run TestStaticCostMatchesLedgerEveryBenchmarkEveryScheme -count=1

# Fast-tier differential wall: the compiled basic-block fast tier must be
# invisible. Two layers. The in-process grid runs every tinyc benchmark ×
# Table 1 scheme accurate-then-fast and diffs cycles, per-unit stats,
# registers, PSW, output and the attribution ledger. The end-to-end layer
# runs the full experiment suite with the tier off (recording a reference
# report) and again with it on under -check-attr: tables, cycle totals and
# the per-cause attribution breakdown must all match byte-for-byte.
fast-gate:
	$(GO) test ./internal/core -run 'TestFastTier' -count=1
	$(GO) run ./cmd/mipsx-bench -parallel 1 -json > .fastgate_off.json
	$(GO) run ./cmd/mipsx-bench -parallel 1 -fast -check .fastgate_off.json -check-attr
	rm -f .fastgate_off.json

# Longer exploration of the compile → reorganize → lint invariant, plus the
# fast-vs-accurate differential fuzz target (CI smokes both on every merge).
fuzz:
	$(GO) test ./internal/lint -fuzz=FuzzCompileReorgLint -fuzztime=60s
	$(GO) test ./internal/core -fuzz=FuzzFastVsAccurate -fuzztime=60s -run '^$$'

# Bench-regression tracking: verify every experiment table against the
# recorded golden baseline (exit 1 on drift) three times — once serially
# with no cache (every cell live at -parallel 1), then cold (recording) and
# hot (replaying) over one cache directory, so scheduling nondeterminism and
# unsound memo keys both surface as table drift; the hot pass's report is
# BENCH_pr.json (with the observation-overhead and fast-tier cold-cell
# measurements recorded, and the fast tier live for its cells), then run the
# Go benchmarks once. CI uploads BENCH_pr.json. The greps are the
# attribution gate: the report must carry the cycle-attribution breakdown
# with conservation passing, both engine-wide and per cell (more than one
# "attribution" key means the cell_timings entries carry their own).
BENCHCACHE ?= .benchcache
bench:
	rm -rf $(BENCHCACHE)
	$(GO) run ./cmd/mipsx-bench -parallel 1 -check BENCH_baseline.json > /dev/null
	$(GO) run ./cmd/mipsx-bench -check BENCH_baseline.json -cache $(BENCHCACHE) -json > BENCH_cold.json
	$(GO) run ./cmd/mipsx-bench -check BENCH_baseline.json -cache $(BENCHCACHE) -json -obs-overhead -fast -fast-bench > BENCH_pr.json
	grep -q '"attribution_conserved": true' BENCH_pr.json
	grep -q '"attribution_conserved": true' BENCH_cold.json
	test `grep -c '"attribution"' BENCH_pr.json` -gt 1
	grep -q '"obs_overhead"' BENCH_pr.json
	grep -q '"fast_tier"' BENCH_pr.json
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Sample observability artifacts: a Perfetto-loadable event trace and an
# attribution report from one benchmark run (CI uploads both).
trace-sample:
	$(GO) run ./cmd/mipsx-run -bench bubblesort -breakdown \
		-trace-out trace_sample.json -breakdown-out breakdown_sample.json

# Hot-only pass against an existing cache directory (after `make bench`).
bench-hot:
	$(GO) run ./cmd/mipsx-bench -check BENCH_baseline.json -cache $(BENCHCACHE) -json > BENCH_pr.json

# Explorer smoke gate: a small Icache-geometry sweep (6 design points × 2
# benchmarks) through mipsx-explore must reproduce the recorded golden
# mipsx-explore/v1 document byte-for-byte — CPI, area, code size, Pareto
# flags and every per-point attribution count. The document carries no
# timestamps, so any drift is a real change to simulated behavior (or a
# deliberate one, reseeded with explore-baseline in the same PR).
EXPLORE_ARGS = -axis icache.sets=2,4,8 -axis icache.fetch_back=1,2 -benches fib,sieve
explore-smoke:
	$(GO) run ./cmd/mipsx-explore $(EXPLORE_ARGS) -check EXPLORE_baseline.json

# Reseed the explorer golden document (deliberate changes only).
explore-baseline:
	$(GO) run ./cmd/mipsx-explore $(EXPLORE_ARGS) -json > EXPLORE_baseline.json

# Multiprogramming scenario gate: the default (workload × quantum × policy)
# grid must reproduce the recorded mipsx-scenario/v1 document byte-for-byte.
# Every cell is conservation-verified inside scenario.Run (the shared ledger
# must equal per-context cycles + switch overhead + flush stalls), and the
# pid-policy cells must charge zero context-switch/flush-refill cycles —
# mipsx-bench re-checks that invariant before comparing, so a reseeded
# baseline cannot smuggle it away.
scenario-gate:
	$(GO) run ./cmd/mipsx-bench -scenario -check SCENARIO_baseline.json

# Reseed the scenario golden document (deliberate changes only).
scenario-baseline:
	$(GO) run ./cmd/mipsx-bench -scenario -json > SCENARIO_baseline.json

# Streaming observability gate, four layers. (1) The stream/window unit and
# seam tests: streamed traces byte-identical to buffered WriteJSON, windowed
# conservation across fast-tier-block, squash and context-switch boundaries,
# and the observation-purity test with streaming tracers + windowed ledgers
# attached. (2) End-to-end byte-identity: the same benchmark traced through
# -trace-out (buffered) and -obs-stream (incremental) must produce identical
# files. (3) A live windowed run whose mipsx-obswin/v1 stream mipsx-trace
# -follow -once replays with every per-window conservation check passing.
# (4) The wall-clock budget gate (OBS_BUDGET=1): ledger and windowed-ledger
# overhead within the documented budget, zero dropped events.
stream-gate:
	$(GO) test ./internal/obs -run 'TestStream|TestStart|TestWindow|TestParseWindowStream|TestReportCarriesDroppedEvents' -count=1
	$(GO) test ./internal/core -run 'TestStreamedTraceByteIdenticalMachine|TestStreamNeverDropsOnMachineRun|TestObservationPurityStreamingAndWindows|TestWindowSeam' -count=1
	$(GO) test ./internal/scenario -run 'TestWindow' -count=1
	$(GO) test ./cmd/mipsx-trace -count=1
	$(GO) run ./cmd/mipsx-run -bench bubblesort -trace-out .streamgate_buf.json > /dev/null
	$(GO) run ./cmd/mipsx-run -bench bubblesort -obs-stream .streamgate_stream.json > /dev/null
	cmp .streamgate_buf.json .streamgate_stream.json
	$(GO) run ./cmd/mipsx-run -bench bubblesort -obs-window 4096 -obs-window-out .streamgate_win.jsonl > /dev/null
	$(GO) run ./cmd/mipsx-trace -follow .streamgate_win.jsonl -once > /dev/null
	OBS_BUDGET=1 $(GO) test ./internal/experiments -run TestObsOverheadBudget -count=1
	rm -f .streamgate_buf.json .streamgate_stream.json .streamgate_win.jsonl
