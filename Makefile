# Verification entry points. `make check` is the full gate a change must
# pass; CI and the tier-1 recipe in ROADMAP.md both run it.

GO ?= go

.PHONY: check build test vet race lint-suite fuzz bench bench-hot

check: vet build test race lint-suite

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Zero error-severity hazard findings across every benchmark × Table 1
# scheme — the software-interlock invariant of the whole toolchain.
lint-suite:
	$(GO) run ./cmd/mipsx-lint -suite

# Longer exploration of the compile → reorganize → lint invariant.
fuzz:
	$(GO) test ./internal/lint -fuzz=FuzzCompileReorgLint -fuzztime=60s

# Bench-regression tracking: verify every experiment table against the
# recorded golden baseline (exit 1 on drift) twice over one cache directory
# — cold (recording) then hot (replaying) — so an unsound memo key surfaces
# as table drift; the hot pass's report is BENCH_pr.json, then run the Go
# benchmarks once. CI uploads BENCH_pr.json.
BENCHCACHE ?= .benchcache
bench:
	rm -rf $(BENCHCACHE)
	$(GO) run ./cmd/mipsx-bench -check BENCH_baseline.json -cache $(BENCHCACHE) -json > BENCH_cold.json
	$(GO) run ./cmd/mipsx-bench -check BENCH_baseline.json -cache $(BENCHCACHE) -json > BENCH_pr.json
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Hot-only pass against an existing cache directory (after `make bench`).
bench-hot:
	$(GO) run ./cmd/mipsx-bench -check BENCH_baseline.json -cache $(BENCHCACHE) -json > BENCH_pr.json
