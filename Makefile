# Verification entry points. `make check` is the full gate a change must
# pass; CI and the tier-1 recipe in ROADMAP.md both run it.

GO ?= go

.PHONY: check build test vet race lint-suite fuzz bench bench-hot trace-sample

check: vet build test race lint-suite

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Zero error-severity hazard findings across every benchmark × Table 1
# scheme — the software-interlock invariant of the whole toolchain.
lint-suite:
	$(GO) run ./cmd/mipsx-lint -suite

# Longer exploration of the compile → reorganize → lint invariant.
fuzz:
	$(GO) test ./internal/lint -fuzz=FuzzCompileReorgLint -fuzztime=60s

# Bench-regression tracking: verify every experiment table against the
# recorded golden baseline (exit 1 on drift) three times — once serially
# with no cache (every cell live at -parallel 1), then cold (recording) and
# hot (replaying) over one cache directory, so scheduling nondeterminism and
# unsound memo keys both surface as table drift; the hot pass's report is
# BENCH_pr.json (with the observation-overhead measurement recorded), then
# run the Go benchmarks once. CI uploads BENCH_pr.json. The greps are the
# attribution gate: the report must carry the cycle-attribution breakdown
# with conservation passing, both engine-wide and per cell (more than one
# "attribution" key means the cell_timings entries carry their own).
BENCHCACHE ?= .benchcache
bench:
	rm -rf $(BENCHCACHE)
	$(GO) run ./cmd/mipsx-bench -parallel 1 -check BENCH_baseline.json > /dev/null
	$(GO) run ./cmd/mipsx-bench -check BENCH_baseline.json -cache $(BENCHCACHE) -json > BENCH_cold.json
	$(GO) run ./cmd/mipsx-bench -check BENCH_baseline.json -cache $(BENCHCACHE) -json -obs-overhead > BENCH_pr.json
	grep -q '"attribution_conserved": true' BENCH_pr.json
	grep -q '"attribution_conserved": true' BENCH_cold.json
	test `grep -c '"attribution"' BENCH_pr.json` -gt 1
	grep -q '"obs_overhead"' BENCH_pr.json
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Sample observability artifacts: a Perfetto-loadable event trace and an
# attribution report from one benchmark run (CI uploads both).
trace-sample:
	$(GO) run ./cmd/mipsx-run -bench bubblesort -breakdown \
		-trace-out trace_sample.json -breakdown-out breakdown_sample.json

# Hot-only pass against an existing cache directory (after `make bench`).
bench-hot:
	$(GO) run ./cmd/mipsx-bench -check BENCH_baseline.json -cache $(BENCHCACHE) -json > BENCH_pr.json
